package main

import (
	"context"
	"encoding/json"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"capybara/internal/fleet"
	"capybara/internal/fleetsvc"
)

func testOptions(n int, jobs int) *options {
	return &options{
		n:     n,
		seed:  7,
		jobs:  jobs,
		scale: 0.05,
	}
}

// TestRunEndToEnd exercises the CLI path: CSV and JSON reports land in
// the output file, and the bytes are identical across worker counts and
// with the memo disabled (the CLI-level view of the engine's
// determinism guarantee).
func TestRunEndToEnd(t *testing.T) {
	dir := t.TempDir()
	emit := func(name string, jobs int, asJSON, noMemo bool) string {
		t.Helper()
		o := testOptions(48, jobs)
		o.asJSON = asJSON
		o.noMemo = noMemo
		o.out = filepath.Join(dir, name)
		if err := run(o); err != nil {
			t.Fatal(err)
		}
		b, err := os.ReadFile(o.out)
		if err != nil {
			t.Fatal(err)
		}
		if len(b) == 0 {
			t.Fatalf("%s: empty report", name)
		}
		return string(b)
	}

	csv1 := emit("j1.csv", 1, false, false)
	csv4 := emit("j4.csv", 4, false, false)
	if csv1 != csv4 {
		t.Fatal("CSV differs between -jobs 1 and -jobs 4")
	}
	csvNoMemo := emit("nomemo.csv", 2, false, true)
	if csv1 != csvNoMemo {
		t.Fatal("CSV differs with -memo=false")
	}
	js1 := emit("j1.json", 1, true, false)
	js4 := emit("j4.json", 4, true, false)
	if js1 != js4 {
		t.Fatal("JSON differs between -jobs 1 and -jobs 4")
	}
}

// TestValidate pins the up-front flag validation: every bad flag is a
// usage error before any simulation starts.
func TestValidate(t *testing.T) {
	ok := func(mutate func(*options)) *options {
		o := testOptions(10, 2)
		o.leaseTimeout = time.Minute
		o.leaseRetries = 3
		mutate(o)
		return o
	}
	if err := ok(func(o *options) {}).validate(); err != nil {
		t.Fatalf("good options rejected: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*options)
		want   string
	}{
		{"zero n", func(o *options) { o.n = 0 }, "-n"},
		{"negative n", func(o *options) { o.n = -5 }, "-n"},
		{"zero scale", func(o *options) { o.scale = 0 }, "-scale"},
		{"big scale", func(o *options) { o.scale = 1.5 }, "-scale"},
		{"nan scale", func(o *options) { o.scale = nan() }, "-scale"},
		{"zero jobs", func(o *options) { o.jobs = 0 }, "-jobs"},
		{"negative cache", func(o *options) { o.cacheSize = -1 }, "-cache"},
		{"serve and connect", func(o *options) { o.serveAddr = ":1"; o.connectAddr = ":2" }, "mutually exclusive"},
		{"serve and serve-http", func(o *options) { o.serveAddr = ":1"; o.serveHTTPAddr = ":2" }, "mutually exclusive"},
		{"serve-http and http", func(o *options) { o.serveHTTPAddr = ":1"; o.httpURL = "http://x" }, "mutually exclusive"},
		{"bad lease timeout", func(o *options) { o.serveAddr = ":1"; o.leaseTimeout = 0 }, "-lease-timeout"},
		{"bad lease retries", func(o *options) { o.serveAddr = ":1"; o.leaseRetries = 0 }, "-lease-retries"},
		{"negative dial retry", func(o *options) { o.connectAddr = ":1"; o.dialRetry = -time.Second }, "-dial-retry"},
		{"negative chunk", func(o *options) { o.chunk = -8 }, "-chunk"},
		{"serve-http without store", func(o *options) { o.serveHTTPAddr = ":1" }, "-store"},
		{"serve-http bad max-jobs", func(o *options) { o.serveHTTPAddr = ":1"; o.storeDir = "d"; o.maxJobs = 0 }, "-max-jobs"},
		{"store on a worker", func(o *options) { o.connectAddr = ":1"; o.storeDir = "d" }, "-store"},
		{"client verb without http", func(o *options) { o.submit = true }, "-http"},
		{"http without a verb", func(o *options) { o.httpURL = "http://x" }, "exactly one"},
		{"http with two verbs", func(o *options) { o.httpURL = "http://x"; o.submit = true; o.waitID = "j1" }, "exactly one"},
	}
	for _, tc := range cases {
		err := ok(tc.mutate).validate()
		if err == nil {
			t.Fatalf("%s: accepted", tc.name)
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
	// Worker mode ignores the report spec (it comes from the
	// coordinator), so a worker with unset -n must validate.
	o := testOptions(0, 2)
	o.connectAddr = "localhost:9"
	if err := o.validate(); err != nil {
		t.Fatalf("worker mode rejected unset -n: %v", err)
	}
	// Likewise the daemon (specs arrive over the API) and the non-submit
	// client verbs (they carry only a job ID).
	o = testOptions(0, 2)
	o.serveHTTPAddr = ":0"
	o.storeDir = "d"
	o.maxJobs = 1
	if err := o.validate(); err != nil {
		t.Fatalf("daemon mode rejected unset -n: %v", err)
	}
	o = testOptions(0, 2)
	o.httpURL = "http://x"
	o.waitID = "j000001"
	if err := o.validate(); err != nil {
		t.Fatalf("client wait mode rejected unset -n: %v", err)
	}
}

func nan() float64 {
	var zero float64
	return zero / zero
}

// TestRunWithStoreResumes: the one-shot path with -store produces the
// same bytes as the storeless path, and a second identical run is
// served from checkpoints (every chunk present in the store afterward).
func TestRunWithStoreResumes(t *testing.T) {
	dir := t.TempDir()
	plain := testOptions(48, 2)
	plain.chunk = 8
	plain.out = filepath.Join(dir, "plain.csv")
	if err := run(plain); err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile(plain.out)
	if err != nil {
		t.Fatal(err)
	}

	for i, name := range []string{"first.csv", "second.csv"} {
		o := testOptions(48, 2)
		o.chunk = 8
		o.storeDir = filepath.Join(dir, "store")
		o.out = filepath.Join(dir, name)
		if err := run(o); err != nil {
			t.Fatalf("store run %d: %v", i, err)
		}
		got, err := os.ReadFile(o.out)
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != string(want) {
			t.Fatalf("store run %d differs from the storeless report", i)
		}
	}

	// All 6 chunks must be checkpointed for the spec the runs used.
	store, err := fleetsvc.Open(filepath.Join(dir, "store"))
	if err != nil {
		t.Fatal(err)
	}
	cfg := testOptions(48, 2)
	cfg.chunk = 8
	job, err := fleet.NewJob(cfg.fleetConfig())
	if err != nil {
		t.Fatal(err)
	}
	completed, err := store.Completed(job.SpecHash())
	if err != nil {
		t.Fatal(err)
	}
	if len(completed) != job.NumChunks() {
		t.Fatalf("store holds %d chunks, want %d", len(completed), job.NumChunks())
	}
}

// TestServeHTTPDaemonEndToEnd boots the daemon on a loopback port,
// drives it with the CLI client's own plumbing (submit via the API,
// clientWait for the report), and checks the fetched report is
// byte-identical to the single-process run. Then a clean shutdown.
func TestServeHTTPDaemonEndToEnd(t *testing.T) {
	dir := t.TempDir()
	single := testOptions(48, 2)
	single.chunk = 8
	single.out = filepath.Join(dir, "single.csv")
	if err := run(single); err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile(single.out)
	if err != nil {
		t.Fatal(err)
	}

	o := testOptions(0, 2)
	o.serveHTTPAddr = "127.0.0.1:0"
	o.storeDir = filepath.Join(dir, "store")
	o.maxJobs = 2
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ready := make(chan string, 1)
	done := make(chan error, 1)
	go func() { done <- serveHTTP(ctx, o, ready) }()
	var addr string
	select {
	case addr = <-ready:
	case err := <-done:
		t.Fatalf("daemon exited before ready: %v", err)
	}

	c := &apiClient{base: "http://" + addr, hc: &http.Client{Timeout: 10 * time.Second}}
	body, err := json.Marshal(fleetsvc.SubmitRequest{N: 48, Seed: 7, Scale: 0.05, ChunkSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	var st fleetsvc.JobStatus
	if err := c.do("POST", "/api/v1/jobs", body, &st); err != nil {
		t.Fatalf("submit: %v", err)
	}

	wo := testOptions(0, 1)
	wo.out = filepath.Join(dir, "daemon.csv")
	if err := clientWait(c, wo, st.ID); err != nil {
		t.Fatalf("wait: %v", err)
	}
	got, err := os.ReadFile(wo.out)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Fatalf("daemon-served report differs from single-process run:\n--- single ---\n%s--- daemon ---\n%s", want, got)
	}

	if err := clientStatus(c, st.ID); err != nil {
		t.Fatalf("status: %v", err)
	}
	if err := clientCancel(c, st.ID); err != nil { // terminal: must be a no-op, not an error
		t.Fatalf("cancel terminal job: %v", err)
	}

	cancel()
	if err := <-done; err != nil {
		t.Fatalf("daemon shutdown: %v", err)
	}
}

// TestServeConnectEndToEnd drives the CLI coordinator and two CLI
// workers over loopback and asserts the sharded report is byte-for-byte
// the single-process report.
func TestServeConnectEndToEnd(t *testing.T) {
	dir := t.TempDir()

	single := testOptions(96, 2)
	single.out = filepath.Join(dir, "single.csv")
	if err := run(single); err != nil {
		t.Fatal(err)
	}

	// Reserve a port for the coordinator.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	co := testOptions(96, 2)
	co.serveAddr = addr
	co.out = filepath.Join(dir, "sharded.csv")
	co.leaseTimeout = time.Minute
	co.leaseRetries = 3

	var wg sync.WaitGroup
	var serveErr error
	wg.Add(1)
	go func() {
		defer wg.Done()
		serveErr = runCoordinator(co)
	}()
	workerErrs := make([]error, 2)
	for i := range workerErrs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			wo := testOptions(0, 1)
			wo.connectAddr = addr
			wo.dialRetry = 10 * time.Second
			workerErrs[i] = runWorker(wo)
		}(i)
	}
	wg.Wait()
	if serveErr != nil {
		t.Fatalf("coordinator: %v", serveErr)
	}
	for i, err := range workerErrs {
		if err != nil {
			t.Fatalf("worker %d: %v", i, err)
		}
	}

	want, err := os.ReadFile(single.out)
	if err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(co.out)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) == 0 || string(got) != string(want) {
		t.Fatalf("sharded CLI report differs from single-process report:\n--- single ---\n%s--- sharded ---\n%s", want, got)
	}
}
