package main

import (
	"os"
	"path/filepath"
	"testing"
)

// TestRunEndToEnd exercises the CLI path: CSV and JSON reports land in
// the output file, and the bytes are identical across worker counts and
// with the memo disabled (the CLI-level view of the engine's
// determinism guarantee).
func TestRunEndToEnd(t *testing.T) {
	dir := t.TempDir()
	emit := func(name string, jobs int, asJSON, noMemo bool) string {
		t.Helper()
		path := filepath.Join(dir, name)
		if err := run(48, 7, jobs, 0.05, asJSON, path, noMemo, 0, false); err != nil {
			t.Fatal(err)
		}
		b, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if len(b) == 0 {
			t.Fatalf("%s: empty report", name)
		}
		return string(b)
	}

	csv1 := emit("j1.csv", 1, false, false)
	csv4 := emit("j4.csv", 4, false, false)
	if csv1 != csv4 {
		t.Fatal("CSV differs between -jobs 1 and -jobs 4")
	}
	csvNoMemo := emit("nomemo.csv", 2, false, true)
	if csv1 != csvNoMemo {
		t.Fatal("CSV differs with -memo=false")
	}
	js1 := emit("j1.json", 1, true, false)
	js4 := emit("j4.json", 4, true, false)
	if js1 != js4 {
		t.Fatal("JSON differs between -jobs 1 and -jobs 4")
	}

	if err := run(0, 1, 1, 1, false, "", false, 0, false); err == nil {
		t.Fatal("n=0 accepted")
	}
	if err := run(1, 1, 1, 5, false, "", false, 0, false); err == nil {
		t.Fatal("scale 5 accepted")
	}
}
