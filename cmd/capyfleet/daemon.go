package main

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"capybara/internal/fleetsvc"
)

// runServeHTTP runs the persistent fleet daemon until SIGINT/SIGTERM.
// Everything that matters lives in -store: the job journal, every
// chunk checkpoint, and finished reports. A kill -9 loses nothing a
// restart cannot resume.
func runServeHTTP(o *options) error {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	return serveHTTP(ctx, o, nil)
}

// serveHTTP opens the store, resumes any jobs a previous daemon left
// unfinished, and serves the job API on o.serveHTTPAddr until ctx is
// canceled. ready, when non-nil, receives the resolved listen address
// (for tests and scripts that bind port 0).
func serveHTTP(ctx context.Context, o *options, ready chan<- string) error {
	store, err := fleetsvc.Open(o.storeDir)
	if err != nil {
		return err
	}
	svc, err := fleetsvc.NewService(fleetsvc.ServiceConfig{
		Store:         store,
		Jobs:          o.jobs,
		MaxConcurrent: o.maxJobs,
		NoMemo:        o.noMemo,
		CacheSize:     o.cacheSize,
		NoRecycle:     o.noRecycle,
		Batch:         o.configBatch(),
		NoVector:      o.noVector,
		NoFuse:        o.noFuse,
		NoCohortSpin:  o.noCohortSpin,
		NoPhaseKeys:   o.noPhaseKeys,
		BypassAfter:   o.bypassAfter,
		BypassBelow:   o.bypassBelow,
	})
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", o.serveHTTPAddr)
	if err != nil {
		svc.Close()
		return err
	}
	fmt.Fprintf(os.Stderr, "capyfleet: serving HTTP on %s (store %s, %d concurrent jobs)\n",
		ln.Addr(), o.storeDir, o.maxJobs)
	if ready != nil {
		ready <- ln.Addr().String()
	}

	srv := &http.Server{Handler: svc.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case <-ctx.Done():
		// Graceful stop: stop accepting, let in-flight requests drain
		// briefly, then stop the service — running jobs are interrupted
		// and stay journaled as running, the resume marker a successor
		// daemon picks up.
		shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = srv.Shutdown(shutCtx)
		svc.Close()
		fmt.Fprintln(os.Stderr, "capyfleet: daemon stopped (unfinished jobs will resume on restart)")
		return nil
	case err := <-errc:
		svc.Close()
		return fmt.Errorf("capyfleet: daemon: %w", err)
	}
}
