package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"capybara/internal/fleetsvc"
)

// The daemon's command-line client. Scripting contract: -submit prints
// exactly the new job's ID on stdout; -wait writes the report to -o (or
// stdout) and a one-line "job ID done: N chunks (L loaded, C computed)"
// summary to stderr; -status prints the status JSON; everything else
// chatty goes to stderr.

func runClient(o *options) error {
	c := &apiClient{
		base: strings.TrimRight(o.httpURL, "/"),
		hc:   &http.Client{Timeout: 30 * time.Second},
	}
	switch {
	case o.submit:
		return clientSubmit(c, o)
	case o.waitID != "":
		return clientWait(c, o, o.waitID)
	case o.statusID != "":
		return clientStatus(c, o.statusID)
	case o.cancelID != "":
		return clientCancel(c, o.cancelID)
	}
	return fmt.Errorf("no client action") // unreachable past validate
}

type apiClient struct {
	base string
	hc   *http.Client
}

// do issues one request and decodes the JSON response into out (unless
// out is nil). Non-2xx responses are surfaced with the server's error
// message.
func (c *apiClient) do(method, path string, body []byte, out any) error {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequest(method, c.base+path, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode/100 != 2 {
		var apiErr struct {
			Error string `json:"error"`
		}
		if json.Unmarshal(data, &apiErr) == nil && apiErr.Error != "" {
			return fmt.Errorf("%s: %s", resp.Status, apiErr.Error)
		}
		return fmt.Errorf("%s %s: %s", method, path, resp.Status)
	}
	if out == nil {
		return nil
	}
	return json.Unmarshal(data, out)
}

func clientSubmit(c *apiClient, o *options) error {
	body, err := json.Marshal(fleetsvc.SubmitRequest{
		N: o.n, Seed: o.seed, Scale: o.scale, ChunkSize: o.chunk,
	})
	if err != nil {
		return err
	}
	var st fleetsvc.JobStatus
	if err := c.do("POST", "/api/v1/jobs", body, &st); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "capyfleet: submitted %s: n=%d seed=%d scale=%g (%d chunks, spec %.12s)\n",
		st.ID, st.Spec.N, st.Spec.Seed, st.Spec.Scale, st.Chunks, st.SpecHash)
	fmt.Println(st.ID)
	return nil
}

// clientWait polls until the job reaches a terminal state, then fetches
// the report. Connection errors are retried indefinitely — the daemon
// being down is expected mid-restart, and the job's fate is in the
// store, not the process. API errors (unknown job) stop immediately.
func clientWait(c *apiClient, o *options, id string) error {
	var st fleetsvc.JobStatus
	downSince := time.Time{}
	for {
		err := c.do("GET", "/api/v1/jobs/"+id, nil, &st)
		if err != nil {
			if strings.Contains(err.Error(), "no job") {
				return err
			}
			if downSince.IsZero() {
				downSince = time.Now()
				fmt.Fprintf(os.Stderr, "capyfleet: daemon unreachable (%v), retrying\n", err)
			}
		} else {
			downSince = time.Time{}
			switch st.State {
			case fleetsvc.StateDone:
				return clientFetchReport(c, o, st)
			case fleetsvc.StateFailed:
				return fmt.Errorf("job %s failed: %s", id, st.Error)
			case fleetsvc.StateCanceled:
				return fmt.Errorf("job %s was canceled", id)
			}
		}
		time.Sleep(250 * time.Millisecond)
	}
}

func clientFetchReport(c *apiClient, o *options, st fleetsvc.JobStatus) error {
	format := ""
	if o.asJSON {
		format = "?format=json"
	}
	req, err := http.NewRequest("GET", c.base+"/api/v1/jobs/"+st.ID+"/report"+format, nil)
	if err != nil {
		return err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("fetching report: %s: %s", resp.Status, data)
	}
	var w io.Writer = os.Stdout
	if o.out != "" {
		f, err := os.Create(o.out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if _, err := w.Write(data); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "capyfleet: job %s done: %d chunks (%d loaded, %d computed)\n",
		st.ID, st.Chunks, st.Loaded, st.Computed)
	return nil
}

func clientStatus(c *apiClient, id string) error {
	var raw json.RawMessage
	if err := c.do("GET", "/api/v1/jobs/"+id+"?cohorts=1", nil, &raw); err != nil {
		return err
	}
	var buf bytes.Buffer
	if err := json.Indent(&buf, raw, "", "  "); err != nil {
		return err
	}
	buf.WriteByte('\n')
	_, err := os.Stdout.Write(buf.Bytes())
	return err
}

func clientCancel(c *apiClient, id string) error {
	var st fleetsvc.JobStatus
	if err := c.do("POST", "/api/v1/jobs/"+id+"/cancel", nil, &st); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "capyfleet: job %s is now %s\n", st.ID, st.State)
	return nil
}
