package main

import (
	"path/filepath"
	"testing"

	"capybara/internal/core"
)

func TestParseVariant(t *testing.T) {
	for s, want := range map[string]core.Variant{
		"Cont": core.Continuous, "fixed": core.Fixed,
		"capy-r": core.CapyR, "CAPY-P": core.CapyP,
	} {
		got, err := parseVariant(s)
		if err != nil || got != want {
			t.Errorf("parseVariant(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := parseVariant("nuclear"); err == nil {
		t.Fatal("unknown variant accepted")
	}
}

func TestRunEndToEnd(t *testing.T) {
	trace := filepath.Join(t.TempDir(), "trace.csv")
	if err := run("TempAlarm", "Capy-P", 3, 60, 1, trace, 5); err != nil {
		t.Fatal(err)
	}
	if err := run("nope", "Capy-P", 1, 0, 1, "", 0); err == nil {
		t.Fatal("unknown app accepted")
	}
	if err := run("TempAlarm", "warp", 1, 0, 1, "", 0); err == nil {
		t.Fatal("unknown system accepted")
	}
}
