// Capysim runs one of the paper's applications on one power system and
// reports accuracy, latency, and sampling behaviour; it can also dump
// the storage-voltage trace as CSV for plotting.
//
// Usage:
//
//	capysim -app TempAlarm -system Capy-P [-events 50] [-mean 144] [-seed 42] [-trace out.csv]
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strings"

	"capybara/internal/apps"
	"capybara/internal/core"
	"capybara/internal/env"
	"capybara/internal/metrics"
	"capybara/internal/sim"
	"capybara/internal/units"
)

func main() {
	app := flag.String("app", "TempAlarm", "application: "+strings.Join(apps.SpecNames(), ", "))
	system := flag.String("system", "Capy-P", "power system: Cont, Fixed, Capy-R, Capy-P")
	events := flag.Int("events", 0, "number of events (0 = the app's default)")
	mean := flag.Float64("mean", 0, "mean event inter-arrival seconds (0 = default)")
	seed := flag.Int64("seed", 42, "schedule seed")
	tracePath := flag.String("trace", "", "write the voltage trace CSV here")
	timeline := flag.Int("timeline", 0, "print the last N device events (boots, brownouts, reconfigs)")
	flag.Parse()

	if err := run(*app, *system, *events, *mean, *seed, *tracePath, *timeline); err != nil {
		fmt.Fprintln(os.Stderr, "capysim:", err)
		os.Exit(1)
	}
}

func parseVariant(s string) (core.Variant, error) {
	for _, v := range []core.Variant{core.Continuous, core.Fixed, core.CapyR, core.CapyP} {
		if strings.EqualFold(v.String(), s) {
			return v, nil
		}
	}
	return 0, fmt.Errorf("unknown system %q (want Cont, Fixed, Capy-R, or Capy-P)", s)
}

func run(app, system string, events int, mean float64, seed int64, tracePath string, timeline int) error {
	spec, err := apps.SpecByName(app)
	if err != nil {
		return err
	}
	variant, err := parseVariant(system)
	if err != nil {
		return err
	}
	if events <= 0 {
		events = spec.Events
	}
	m := spec.Mean
	if mean > 0 {
		m = units.Seconds(mean)
	}
	sched := env.Poisson(rand.New(rand.NewSource(seed)), events, m, spec.Window)

	var trace *sim.Trace
	if tracePath != "" {
		trace = &sim.Trace{MinInterval: 0.1}
	}
	r, err := spec.Build(variant, sched, trace, nil)
	if err != nil {
		return err
	}
	if timeline > 0 {
		r.Inst.Dev.Log = &sim.EventLog{}
	}
	if err := r.Execute(); err != nil {
		return err
	}

	fmt.Printf("%s on %s: %d events over %v (mean inter-arrival %v)\n",
		r.Name, r.Variant, events, sched.Horizon(), sched.MeanInterarrival())
	fmt.Printf("  accuracy: %v\n", r.Accuracy())
	fmt.Printf("  latency:  %v\n", r.Latency())
	gaps := r.Gaps()
	counts := metrics.GapCounts(gaps)
	fmt.Printf("  sampling: %d samples; gaps back-to-back %d, clean %d, missed-event %d\n",
		len(r.Rec.Samples()), counts[metrics.BackToBack], counts[metrics.Clean], counts[metrics.MissedEvent])
	st := r.Inst.Dev.Stats
	fmt.Printf("  device:   boots %d, brownouts %d, on %v, charging %v, off %v\n",
		st.Boots, st.Brownouts, st.TimeOn, st.TimeCharging, st.TimeOff)
	fmt.Printf("  runtime:  reconfigurations %d, precharges %d, task restarts %d\n",
		r.Inst.Runtime.Reconfigs, r.Inst.Runtime.Precharges, r.Inst.Engine.Restarts)

	if trace != nil {
		if err := writeTrace(tracePath, trace); err != nil {
			return err
		}
		fmt.Printf("  trace:    %d samples written to %s\n", len(trace.Samples), tracePath)
	}
	if timeline > 0 {
		events := r.Inst.Dev.Log.Events()
		if len(events) > timeline {
			events = events[len(events)-timeline:]
		}
		fmt.Printf("  timeline (last %d events):\n", len(events))
		for _, e := range events {
			fmt.Printf("    %v\n", e)
		}
	}
	return nil
}

func writeTrace(path string, tr *sim.Trace) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if _, err := fmt.Fprintln(f, "t_seconds,voltage,phase"); err != nil {
		return err
	}
	for _, s := range tr.Samples {
		if _, err := fmt.Fprintf(f, "%.3f,%.4f,%s\n", float64(s.T), float64(s.V), s.Phase); err != nil {
			return err
		}
	}
	return nil
}
