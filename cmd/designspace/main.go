// Designspace regenerates the paper's design-space sweeps (Figures 3
// and 4) as CSV series suitable for plotting.
//
// Usage:
//
//	designspace [-fig 3|4|both] [-jobs N]
//
// Sweep points evaluate in parallel across -jobs workers (default:
// every CPU); the emitted series are identical at any worker count.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"

	"capybara/internal/experiments"
	"capybara/internal/prof"
)

func main() {
	fig := flag.String("fig", "both", "which sweep: 3, 4, or both")
	jobs := flag.Int("jobs", runtime.GOMAXPROCS(0), "parallel sweep jobs (1 forces the serial path)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write an allocation profile to this file on exit")
	flag.Parse()

	stop, err := prof.StartCPU(*cpuProfile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "designspace:", err)
		os.Exit(1)
	}

	ctx := context.Background()
	switch *fig {
	case "3":
		err = figure3(ctx, *jobs)
	case "4":
		err = figure4(ctx, *jobs)
	case "both":
		if err = figure3(ctx, *jobs); err == nil {
			err = figure4(ctx, *jobs)
		}
	default:
		err = fmt.Errorf("unknown figure %q", *fig)
	}
	// os.Exit skips defers, so the profile stop runs explicitly before
	// any error exit — a truncated profile is worse than none.
	stop()
	if err == nil {
		err = prof.WriteHeap(*memProfile)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "designspace:", err)
		os.Exit(1)
	}
}

func figure3(ctx context.Context, jobs int) error {
	points, err := experiments.Figure3Parallel(ctx, jobs)
	if err != nil {
		return err
	}
	// Classify against the paper's example requirement (the dashed
	// line): ~1.5 Mops.
	regions := experiments.ClassifyFig3(points, 1.5)
	fmt.Println("# Figure 3 — atomicity vs capacitance (regions vs a 1.5 Mops requirement)")
	fmt.Println("capacitance_uF,operating_s,atomicity_Mops,region")
	for _, p := range points {
		fmt.Printf("%.1f,%.4f,%.4f,%s\n", float64(p.C)*1e6, float64(p.OnFor), p.Mops, regions[p.C])
	}
	fmt.Println()
	return nil
}

func figure4(ctx context.Context, jobs int) error {
	points, err := experiments.Figure4Parallel(ctx, jobs)
	if err != nil {
		return err
	}
	fmt.Println("# Figure 4 — atomicity vs volume by technology")
	fmt.Println("technology,units,volume_mm3,atomicity_Mops")
	for _, p := range points {
		fmt.Printf("%s,%d,%.1f,%.4f\n", p.Tech, p.Units, float64(p.Volume), p.Mops)
	}
	return nil
}
