// Designspace regenerates the paper's design-space sweeps (Figures 3
// and 4) as CSV series suitable for plotting.
//
// Usage:
//
//	designspace [-fig 3|4|both]
package main

import (
	"flag"
	"fmt"
	"os"

	"capybara/internal/experiments"
)

func main() {
	fig := flag.String("fig", "both", "which sweep: 3, 4, or both")
	flag.Parse()

	switch *fig {
	case "3":
		figure3()
	case "4":
		figure4()
	case "both":
		figure3()
		figure4()
	default:
		fmt.Fprintf(os.Stderr, "designspace: unknown figure %q\n", *fig)
		os.Exit(1)
	}
}

func figure3() {
	points := experiments.Figure3()
	// Classify against the paper's example requirement (the dashed
	// line): ~1.5 Mops.
	regions := experiments.ClassifyFig3(points, 1.5)
	fmt.Println("# Figure 3 — atomicity vs capacitance (regions vs a 1.5 Mops requirement)")
	fmt.Println("capacitance_uF,operating_s,atomicity_Mops,region")
	for _, p := range points {
		fmt.Printf("%.1f,%.4f,%.4f,%s\n", float64(p.C)*1e6, float64(p.OnFor), p.Mops, regions[p.C])
	}
	fmt.Println()
}

func figure4() {
	fmt.Println("# Figure 4 — atomicity vs volume by technology")
	fmt.Println("technology,units,volume_mm3,atomicity_Mops")
	for _, p := range experiments.Figure4() {
		fmt.Printf("%s,%d,%.1f,%.4f\n", p.Tech, p.Units, float64(p.Volume), p.Mops)
	}
}
