// Benchjson converts `go test -bench` output into a machine-readable
// trajectory file so performance regressions show up as a diff, not a
// feeling.
//
// Usage:
//
//	go test -bench=. -benchmem -run='^$' . | benchjson -out BENCH_sim.json
//
// The benchmark output is echoed through to stdout unchanged, so the
// tool can sit at the end of a pipe without hiding anything. The JSON
// records ns/op, B/op, allocs/op, and any custom ReportMetric series
// (e.g. Figure 8's accuracy metrics) per benchmark, plus the cpu and
// goos/goarch context lines go test prints.
//
// Compare mode gates two trajectory files against each other:
//
//	benchjson -compare [-threshold 0.25] old.json new.json
//
// It prints a per-benchmark ns/op delta table and exits 1 if any
// benchmark present in both files regressed by more than the threshold
// (a fraction: 0.25 means "25% slower fails"). Added and removed
// benchmarks are reported but never fail the gate — coverage changes
// are a review question, not a perf regression. Benchmarks whose old
// ns/op is below -min are likewise reported but never fail: at one
// iteration a microsecond-scale benchmark's timing is dominated by
// scheduling noise, not by the code under test.
//
// Custom ReportMetric series gate too, with an explicit direction —
// ns/op always reads "lower is better", but devices/sec does not:
//
//	benchjson -compare -metric devices/sec:+ -metric memo-hit-rate:+:0.05 old.json new.json
//
// Each -metric is name:dir[:threshold]: dir is '+' (higher is better,
// a drop fails) or '-' (lower is better, a rise fails); the optional
// threshold overrides -threshold for that metric. A gated metric
// missing from either side is reported but never fails — same policy
// as added/removed benchmarks.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line.
type Result struct {
	Name        string             `json:"name"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  float64            `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64            `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// File is the BENCH_sim.json schema.
type File struct {
	// Context lines from go test ("cpu: ...", "goos: ...").
	Context    []string `json:"context,omitempty"`
	Benchmarks []Result `json:"benchmarks"`
}

// metricGate is one parsed -metric flag: a named custom metric to
// compare, the direction that counts as a regression, and an optional
// per-metric threshold (negative means "inherit -threshold").
type metricGate struct {
	name         string
	higherBetter bool
	threshold    float64
}

// metricGates implements flag.Value so -metric repeats.
type metricGates []metricGate

func (g *metricGates) String() string {
	var parts []string
	for _, m := range *g {
		dir := "-"
		if m.higherBetter {
			dir = "+"
		}
		parts = append(parts, m.name+":"+dir)
	}
	return strings.Join(parts, ",")
}

func (g *metricGates) Set(s string) error {
	// name:dir[:threshold] — split from the right so metric names may
	// themselves contain ':'-free slashes like devices/sec.
	rest := s
	thr := -1.0
	if i := strings.LastIndexByte(rest, ':'); i >= 0 {
		if v, err := strconv.ParseFloat(rest[i+1:], 64); err == nil {
			if v < 0 {
				return fmt.Errorf("metric %q: threshold must be >= 0", s)
			}
			thr = v
			rest = rest[:i]
		}
	}
	i := strings.LastIndexByte(rest, ':')
	if i <= 0 || i != len(rest)-2 {
		return fmt.Errorf("metric %q: want name:dir[:threshold] with dir '+' or '-'", s)
	}
	name, dir := rest[:i], rest[i+1:]
	if dir != "+" && dir != "-" {
		return fmt.Errorf("metric %q: direction must be '+' (higher is better) or '-' (lower is better)", s)
	}
	*g = append(*g, metricGate{name: name, higherBetter: dir == "+", threshold: thr})
	return nil
}

func main() {
	out := flag.String("out", "BENCH_sim.json", "output file")
	compare := flag.Bool("compare", false, "compare two trajectory files: benchjson -compare old.json new.json")
	threshold := flag.Float64("threshold", 0.25, "ns/op regression fraction that fails -compare (0.25 = 25% slower)")
	minNs := flag.Float64("min", 0, "old ns/op below this never fails -compare (noise floor for short runs)")
	var gates metricGates
	flag.Var(&gates, "metric", "gate a custom metric in -compare: name:dir[:threshold], dir '+' = higher is better (repeatable)")
	flag.Parse()

	if *compare {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "benchjson: -compare needs exactly two files: old.json new.json")
			os.Exit(2)
		}
		regressed, err := runCompare(flag.Arg(0), flag.Arg(1), *threshold, *minNs, gates, os.Stdout)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(2)
		}
		if regressed {
			os.Exit(1)
		}
		return
	}

	file, err := parse(os.Stdin, os.Stdout)
	if err == nil {
		err = write(*out, file)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// runCompare loads two trajectory files and renders the ns/op delta
// table. It returns true when any benchmark present in both files is
// slower in new by more than threshold (and above the minNs noise
// floor).
func runCompare(oldPath, newPath string, threshold, minNs float64, gates metricGates, w io.Writer) (bool, error) {
	oldFile, err := load(oldPath)
	if err != nil {
		return false, err
	}
	newFile, err := load(newPath)
	if err != nil {
		return false, err
	}
	return diff(oldFile, newFile, threshold, minNs, gates, w), nil
}

// diff writes the comparison table and reports whether the gate fails.
// Benchmarks are keyed by name; ordering follows the new file so the
// table tracks the current benchmark suite.
func diff(oldFile, newFile *File, threshold, minNs float64, gates metricGates, w io.Writer) bool {
	old := make(map[string]Result, len(oldFile.Benchmarks))
	for _, r := range oldFile.Benchmarks {
		old[r.Name] = r
	}
	fmt.Fprintf(w, "%-32s %14s %14s %9s\n", "benchmark", "old ns/op", "new ns/op", "delta")
	regressed := false
	seen := make(map[string]bool, len(newFile.Benchmarks))
	for _, r := range newFile.Benchmarks {
		seen[r.Name] = true
		prev, ok := old[r.Name]
		if !ok {
			fmt.Fprintf(w, "%-32s %14s %14.0f %9s\n", r.Name, "-", r.NsPerOp, "added")
			continue
		}
		if prev.NsPerOp <= 0 {
			fmt.Fprintf(w, "%-32s %14.0f %14.0f %9s\n", r.Name, prev.NsPerOp, r.NsPerOp, "n/a")
			continue
		}
		delta := r.NsPerOp/prev.NsPerOp - 1
		mark := ""
		switch {
		case delta > threshold && prev.NsPerOp < minNs:
			mark = "  (noise floor)"
		case delta > threshold:
			mark = "  FAIL"
			regressed = true
		}
		fmt.Fprintf(w, "%-32s %14.0f %14.0f %+8.1f%%%s\n", r.Name, prev.NsPerOp, r.NsPerOp, 100*delta, mark)
		if diffMetrics(prev, r, threshold, gates, w) {
			regressed = true
		}
	}
	var removed []string
	for name := range old {
		if !seen[name] {
			removed = append(removed, name)
		}
	}
	sort.Strings(removed)
	for _, name := range removed {
		fmt.Fprintf(w, "%-32s %14.0f %14s %9s\n", name, old[name].NsPerOp, "-", "removed")
	}
	if regressed {
		fmt.Fprintf(w, "FAIL: regression above threshold (ns/op %.0f%%, or a gated metric)\n", 100*threshold)
	}
	return regressed
}

// diffMetrics renders the gated custom-metric rows for one benchmark
// pair and reports whether any gate failed. Gates are direction-aware:
// '+' metrics fail when they drop, '-' metrics fail when they rise.
func diffMetrics(prev, r Result, threshold float64, gates metricGates, w io.Writer) bool {
	failed := false
	for _, g := range gates {
		oldV, oldOK := prev.Metrics[g.name]
		newV, newOK := r.Metrics[g.name]
		label := "  " + r.Name + " " + g.name
		switch {
		case !oldOK && !newOK:
			continue // this benchmark doesn't report the metric
		case !oldOK:
			fmt.Fprintf(w, "%-32s %14s %14g %9s\n", label, "-", newV, "added")
			continue
		case !newOK:
			fmt.Fprintf(w, "%-32s %14g %14s %9s\n", label, oldV, "-", "removed")
			continue
		case oldV == 0:
			fmt.Fprintf(w, "%-32s %14g %14g %9s\n", label, oldV, newV, "n/a")
			continue
		}
		thr := g.threshold
		if thr < 0 {
			thr = threshold
		}
		// delta is oriented so positive always means "worse".
		delta := newV/oldV - 1
		if g.higherBetter {
			delta = -delta
		}
		mark := ""
		if delta > thr {
			mark = "  FAIL"
			failed = true
		}
		change := 100 * (newV/oldV - 1)
		fmt.Fprintf(w, "%-32s %14g %14g %+8.1f%%%s\n", label, oldV, newV, change, mark)
	}
	return failed
}

// load reads a trajectory file written by a previous benchjson run.
func load(path string) (*File, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	file := &File{}
	if err := json.Unmarshal(b, file); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return file, nil
}

func parse(in *os.File, echo *os.File) (*File, error) {
	file := &File{}
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		fmt.Fprintln(echo, line)
		switch {
		case strings.HasPrefix(line, "goos:"),
			strings.HasPrefix(line, "goarch:"),
			strings.HasPrefix(line, "cpu:"):
			file.Context = append(file.Context, strings.TrimSpace(line))
		case strings.HasPrefix(line, "Benchmark"):
			if r, ok := parseBenchLine(line); ok {
				file.Benchmarks = append(file.Benchmarks, r)
			}
		}
	}
	return file, sc.Err()
}

// parseBenchLine parses one result line:
//
//	BenchmarkFigure8  3  498694333 ns/op  0.7306 capyP-accuracy  234364018 B/op  353008 allocs/op
func parseBenchLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Result{}, false
	}
	name := strings.TrimPrefix(fields[0], "Benchmark")
	// Strip the -GOMAXPROCS suffix go test appends under -cpu.
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r := Result{Name: name, Iterations: iters}
	for i := 2; i+1 < len(fields); i += 2 {
		val, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, false
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			r.NsPerOp = val
		case "B/op":
			r.BytesPerOp = val
		case "allocs/op":
			r.AllocsPerOp = val
		case "MB/s":
			// Throughput is derivable from ns/op; skip.
		default:
			if r.Metrics == nil {
				r.Metrics = make(map[string]float64)
			}
			r.Metrics[unit] = val
		}
	}
	return r, true
}

func write(path string, file *File) error {
	b, err := json.MarshalIndent(file, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}
