// Benchjson converts `go test -bench` output into a machine-readable
// trajectory file so performance regressions show up as a diff, not a
// feeling.
//
// Usage:
//
//	go test -bench=. -benchmem -run='^$' . | benchjson -out BENCH_sim.json
//
// The benchmark output is echoed through to stdout unchanged, so the
// tool can sit at the end of a pipe without hiding anything. The JSON
// records ns/op, B/op, allocs/op, and any custom ReportMetric series
// (e.g. Figure 8's accuracy metrics) per benchmark, plus the cpu and
// goos/goarch context lines go test prints.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line.
type Result struct {
	Name        string             `json:"name"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  float64            `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64            `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// File is the BENCH_sim.json schema.
type File struct {
	// Context lines from go test ("cpu: ...", "goos: ...").
	Context    []string `json:"context,omitempty"`
	Benchmarks []Result `json:"benchmarks"`
}

func main() {
	out := flag.String("out", "BENCH_sim.json", "output file")
	flag.Parse()

	file, err := parse(os.Stdin, os.Stdout)
	if err == nil {
		err = write(*out, file)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func parse(in *os.File, echo *os.File) (*File, error) {
	file := &File{}
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		fmt.Fprintln(echo, line)
		switch {
		case strings.HasPrefix(line, "goos:"),
			strings.HasPrefix(line, "goarch:"),
			strings.HasPrefix(line, "cpu:"):
			file.Context = append(file.Context, strings.TrimSpace(line))
		case strings.HasPrefix(line, "Benchmark"):
			if r, ok := parseBenchLine(line); ok {
				file.Benchmarks = append(file.Benchmarks, r)
			}
		}
	}
	return file, sc.Err()
}

// parseBenchLine parses one result line:
//
//	BenchmarkFigure8  3  498694333 ns/op  0.7306 capyP-accuracy  234364018 B/op  353008 allocs/op
func parseBenchLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Result{}, false
	}
	name := strings.TrimPrefix(fields[0], "Benchmark")
	// Strip the -GOMAXPROCS suffix go test appends under -cpu.
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r := Result{Name: name, Iterations: iters}
	for i := 2; i+1 < len(fields); i += 2 {
		val, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, false
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			r.NsPerOp = val
		case "B/op":
			r.BytesPerOp = val
		case "allocs/op":
			r.AllocsPerOp = val
		case "MB/s":
			// Throughput is derivable from ns/op; skip.
		default:
			if r.Metrics == nil {
				r.Metrics = make(map[string]float64)
			}
			r.Metrics[unit] = val
		}
	}
	return r, true
}

func write(path string, file *File) error {
	b, err := json.MarshalIndent(file, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}
