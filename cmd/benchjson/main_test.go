package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeFile(t *testing.T, dir, name string, f *File) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := write(path, f); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestCompareGate exercises the regression gate end to end: within
// threshold passes, above threshold fails, and added/removed
// benchmarks are reported without failing.
func TestCompareGate(t *testing.T) {
	dir := t.TempDir()
	oldPath := writeFile(t, dir, "old.json", &File{Benchmarks: []Result{
		{Name: "Fleet", NsPerOp: 1000},
		{Name: "Figure8", NsPerOp: 500},
		{Name: "Retired", NsPerOp: 42},
	}})

	// 10% slower is within a 25% threshold; a brand-new benchmark and a
	// removed one are informational only.
	okPath := writeFile(t, dir, "ok.json", &File{Benchmarks: []Result{
		{Name: "Fleet", NsPerOp: 1100},
		{Name: "Figure8", NsPerOp: 400},
		{Name: "Brand", NsPerOp: 7},
	}})
	var out bytes.Buffer
	regressed, err := runCompare(oldPath, okPath, 0.25, 0, nil, &out)
	if err != nil {
		t.Fatal(err)
	}
	if regressed {
		t.Fatalf("10%% delta failed a 25%% gate:\n%s", out.String())
	}
	for _, want := range []string{"added", "removed", "Retired", "Brand"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("table missing %q:\n%s", want, out.String())
		}
	}

	// 60% slower fails the same gate and names the offender.
	badPath := writeFile(t, dir, "bad.json", &File{Benchmarks: []Result{
		{Name: "Fleet", NsPerOp: 1600},
		{Name: "Figure8", NsPerOp: 500},
	}})
	out.Reset()
	regressed, err = runCompare(oldPath, badPath, 0.25, 0, nil, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !regressed {
		t.Fatalf("60%% regression passed a 25%% gate:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "FAIL") {
		t.Fatalf("failing table has no FAIL marker:\n%s", out.String())
	}

	// The same delta passes a looser gate.
	out.Reset()
	regressed, err = runCompare(oldPath, badPath, 0.75, 0, nil, &out)
	if err != nil {
		t.Fatal(err)
	}
	if regressed {
		t.Fatalf("60%% regression failed a 75%% gate:\n%s", out.String())
	}
}

// TestCompareThresholdBoundary: the gate is strictly "worse than
// threshold" — exactly-at-threshold passes, one part in a thousand
// beyond fails.
func TestCompareThresholdBoundary(t *testing.T) {
	oldFile := &File{Benchmarks: []Result{{Name: "B", NsPerOp: 1000}}}
	var out bytes.Buffer
	if diff(oldFile, &File{Benchmarks: []Result{{Name: "B", NsPerOp: 1250}}}, 0.25, 0, nil, &out) {
		t.Fatal("exactly-at-threshold delta failed")
	}
	if !diff(oldFile, &File{Benchmarks: []Result{{Name: "B", NsPerOp: 1260}}}, 0.25, 0, nil, &out) {
		t.Fatal("above-threshold delta passed")
	}
}

// TestCompareNoiseFloor: above-threshold deltas on benchmarks whose old
// ns/op is under -min are reported but never fail — at one iteration a
// microsecond-scale benchmark's timing is scheduling noise. Benchmarks
// at or above the floor still gate.
func TestCompareNoiseFloor(t *testing.T) {
	oldFile := &File{Benchmarks: []Result{
		{Name: "Tiny", NsPerOp: 1_000},
		{Name: "Big", NsPerOp: 10_000_000},
	}}
	newFile := &File{Benchmarks: []Result{
		{Name: "Tiny", NsPerOp: 5_000}, // +400%, under the floor
		{Name: "Big", NsPerOp: 11_000_000},
	}}
	var out bytes.Buffer
	if diff(oldFile, newFile, 0.25, 1_000_000, nil, &out) {
		t.Fatalf("sub-floor regression failed the gate:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "noise floor") {
		t.Fatalf("sub-floor regression not annotated:\n%s", out.String())
	}

	// The same floor does not shield a benchmark at/above it.
	newFile.Benchmarks[1].NsPerOp = 20_000_000
	out.Reset()
	if !diff(oldFile, newFile, 0.25, 1_000_000, nil, &out) {
		t.Fatalf("above-floor regression passed:\n%s", out.String())
	}
}

// TestCompareMetricGates: custom metrics gate direction-aware — a '+'
// metric fails when it drops, a '-' metric fails when it rises, and a
// per-metric threshold overrides the global one. Metrics missing on
// either side are reported without failing.
func TestCompareMetricGates(t *testing.T) {
	oldFile := &File{Benchmarks: []Result{
		{Name: "Fleet", NsPerOp: 1000, Metrics: map[string]float64{
			"devices/sec": 500, "memo-hit-rate": 0.80, "waste-rate": 0.10,
		}},
	}}
	gates := metricGates{
		{name: "devices/sec", higherBetter: true, threshold: -1},
		{name: "waste-rate", higherBetter: false, threshold: -1},
		{name: "memo-hit-rate", higherBetter: true, threshold: 0.05},
		{name: "ghost", higherBetter: true, threshold: -1},
	}
	run := func(m map[string]float64) (bool, string) {
		var out bytes.Buffer
		newFile := &File{Benchmarks: []Result{{Name: "Fleet", NsPerOp: 1000, Metrics: m}}}
		return diff(oldFile, newFile, 0.25, 0, gates, &out), out.String()
	}

	// Everything improves: faster, hotter cache, less waste.
	if failed, out := run(map[string]float64{
		"devices/sec": 700, "memo-hit-rate": 0.85, "waste-rate": 0.05,
	}); failed {
		t.Fatalf("improvements failed the gate:\n%s", out)
	}

	// devices/sec collapses by half: a 50% drop on a 25% threshold fails.
	if failed, out := run(map[string]float64{
		"devices/sec": 250, "memo-hit-rate": 0.80, "waste-rate": 0.10,
	}); !failed {
		t.Fatalf("halved devices/sec passed:\n%s", out)
	}

	// A lower-is-better metric rising 50% fails too.
	if failed, out := run(map[string]float64{
		"devices/sec": 500, "memo-hit-rate": 0.80, "waste-rate": 0.15,
	}); !failed {
		t.Fatalf("risen waste-rate passed:\n%s", out)
	}

	// The tight per-metric threshold bites where the global one would
	// not: a 10% hit-rate drop is under 25% but over 5%.
	if failed, out := run(map[string]float64{
		"devices/sec": 500, "memo-hit-rate": 0.72, "waste-rate": 0.10,
	}); !failed {
		t.Fatalf("10%% hit-rate drop passed a 5%% metric threshold:\n%s", out)
	}

	// A metric present only in old is "removed", not a failure; the
	// never-present "ghost" gate stays silent.
	failed, out := run(map[string]float64{"devices/sec": 500})
	if failed {
		t.Fatalf("missing metrics failed the gate:\n%s", out)
	}
	if !strings.Contains(out, "removed") {
		t.Fatalf("dropped metric not reported:\n%s", out)
	}
	if strings.Contains(out, "ghost") {
		t.Fatalf("ghost metric reported:\n%s", out)
	}
}

// TestMetricGateParsing: the name:dir[:threshold] flag grammar.
func TestMetricGateParsing(t *testing.T) {
	var g metricGates
	for _, ok := range []string{"devices/sec:+", "waste-rate:-", "memo-hit-rate:+:0.05"} {
		if err := g.Set(ok); err != nil {
			t.Fatalf("Set(%q): %v", ok, err)
		}
	}
	if len(g) != 3 || !g[0].higherBetter || g[1].higherBetter || g[2].threshold != 0.05 {
		t.Fatalf("parsed gates wrong: %+v", g)
	}
	if g[0].threshold >= 0 || g[1].threshold >= 0 {
		t.Fatalf("missing thresholds should be negative (inherit): %+v", g)
	}
	for _, bad := range []string{"noflag", "name:*", "name:+:-0.5", "name:0.5", ":+"} {
		var b metricGates
		if err := b.Set(bad); err == nil {
			t.Fatalf("Set(%q) accepted", bad)
		}
	}
}

// TestCompareMissingFile: unreadable inputs are an error, not a pass.
func TestCompareMissingFile(t *testing.T) {
	dir := t.TempDir()
	real := writeFile(t, dir, "real.json", &File{})
	var out bytes.Buffer
	if _, err := runCompare(filepath.Join(dir, "absent.json"), real, 0.25, 0, nil, &out); err == nil {
		t.Fatal("missing old file accepted")
	}
	if _, err := runCompare(real, filepath.Join(dir, "absent.json"), 0.25, 0, nil, &out); err == nil {
		t.Fatal("missing new file accepted")
	}
	garbled := filepath.Join(dir, "garbled.json")
	if err := os.WriteFile(garbled, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := runCompare(garbled, real, 0.25, 0, nil, &out); err == nil {
		t.Fatal("garbled old file accepted")
	}
}
