package main

import "testing"

func TestTaskFlagParsing(t *testing.T) {
	var flags taskFlags
	if err := flags.Set("sample:2.1:0.01:10"); err != nil {
		t.Fatal(err)
	}
	if err := flags.Set("alarm:29:0.14::reactive"); err != nil {
		t.Fatal(err)
	}
	if len(flags) != 2 {
		t.Fatalf("parsed %d demands", len(flags))
	}
	if flags[0].Name != "sample" || flags[0].MaxRecharge != 10 || flags[0].Reactive {
		t.Fatalf("first demand wrong: %+v", flags[0])
	}
	if !flags[1].Reactive || flags[1].MaxRecharge != 0 {
		t.Fatalf("second demand wrong: %+v", flags[1])
	}
	if flags.String() == "" {
		t.Error("empty stringer")
	}
	for _, bad := range []string{"x", "x:y:z", "x:1:z", "x:1:2:z"} {
		if err := flags.Set(bad); err == nil {
			t.Errorf("bad flag %q accepted", bad)
		}
	}
}

func TestRunEndToEnd(t *testing.T) {
	demands := taskFlags{}
	if err := demands.Set("sample:2.1:0.01:60"); err != nil {
		t.Fatal(err)
	}
	if err := run(demands, 2.0, "EDLC", 2.4); err != nil {
		t.Fatal(err)
	}
	if err := run(nil, 2.0, "EDLC", 2.4); err == nil {
		t.Fatal("empty demand set accepted")
	}
	if err := run(demands, 2.0, "unobtainium", 2.4); err == nil {
		t.Fatal("unknown technology accepted")
	}
}
