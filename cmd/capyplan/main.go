// Capyplan runs the paper's §8 future work: given a set of task energy
// demands, it derives a capacitor bank array and a mode table
// automatically (capacity estimation + bank allocation).
//
// Usage:
//
//	capyplan -supply 2 [-tech EDLC] [-vtop 2.4] \
//	    -task sample:2.1:0.01:10 -task alarm:29:0.14::reactive
//
// Each -task is name:load_mW:duration_s[:max_recharge_s][:reactive].
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"capybara/internal/core"
	"capybara/internal/harvest"
	"capybara/internal/power"
	"capybara/internal/storage"
	"capybara/internal/units"
)

type taskFlags []core.TaskDemand

func (t *taskFlags) String() string { return fmt.Sprint(len(*t), " tasks") }

func (t *taskFlags) Set(s string) error {
	parts := strings.Split(s, ":")
	if len(parts) < 3 {
		return fmt.Errorf("want name:load_mW:duration_s[:max_recharge_s][:reactive], got %q", s)
	}
	load, err := strconv.ParseFloat(parts[1], 64)
	if err != nil {
		return fmt.Errorf("bad load %q: %w", parts[1], err)
	}
	dur, err := strconv.ParseFloat(parts[2], 64)
	if err != nil {
		return fmt.Errorf("bad duration %q: %w", parts[2], err)
	}
	d := core.TaskDemand{
		Name:     parts[0],
		Load:     units.Power(load) * units.MilliWatt,
		Duration: units.Seconds(dur),
	}
	if len(parts) > 3 && parts[3] != "" {
		mr, err := strconv.ParseFloat(parts[3], 64)
		if err != nil {
			return fmt.Errorf("bad max recharge %q: %w", parts[3], err)
		}
		d.MaxRecharge = units.Seconds(mr)
	}
	if len(parts) > 4 && parts[4] == "reactive" {
		d.Reactive = true
	}
	*t = append(*t, d)
	return nil
}

func main() {
	var tasks taskFlags
	flag.Var(&tasks, "task", "task demand as name:load_mW:duration_s[:max_recharge_s][:reactive] (repeatable)")
	supply := flag.Float64("supply", 2.0, "harvester power in mW")
	techName := flag.String("tech", "EDLC", "capacitor technology for the banks")
	vtop := flag.Float64("vtop", float64(core.DefaultVTop), "charge-complete voltage")
	flag.Parse()

	if err := run(tasks, *supply, *techName, *vtop); err != nil {
		fmt.Fprintln(os.Stderr, "capyplan:", err)
		os.Exit(1)
	}
}

func run(tasks []core.TaskDemand, supplyMW float64, techName string, vtop float64) error {
	if len(tasks) == 0 {
		return fmt.Errorf("no -task demands given (try -task sample:2.1:0.01:10 -task alarm:29:0.14::reactive)")
	}
	tech, err := storage.TechnologyByName(techName)
	if err != nil {
		return err
	}
	sys := power.NewSystem(harvest.RegulatedSupply{Max: units.Power(supplyMW) * units.MilliWatt, V: 3.0})
	plan, err := core.PlanModes(sys, tech, tasks, units.Voltage(vtop))
	if err != nil {
		return err
	}

	fmt.Printf("plan for %d demands at %.2g mW harvested, %s units, Vtop %v\n\n",
		len(tasks), supplyMW, tech.Name, plan.VTop)
	fmt.Println("banks:")
	for i, b := range plan.Banks {
		role := "switched"
		if i == 0 {
			role = "base (always on)"
		}
		fmt.Printf("  %-7s %-10v vol %-10v %s\n", b.Name(), b.Capacitance(), b.Volume(), role)
	}
	fmt.Println("\nmodes:")
	for _, m := range plan.Modes {
		fmt.Printf("  %-10s mask %#04b  recharge ≈ %v\n",
			m.Name, m.Mask, plan.RechargeTimes[string(m.Name)])
	}
	fmt.Printf("\ntotal: %v in %v of board volume\n", plan.TotalCapacitance(), plan.TotalVolume())
	return nil
}
