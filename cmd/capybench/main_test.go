package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestSlugify(t *testing.T) {
	tests := []struct{ in, want string }{
		{"Figure 8 — event detection accuracy", "figure-8-event-detection-accuracy"},
		{"§5.2 — reconfiguration mechanism comparison", "52-reconfiguration-mechanism-comparison"},
		{"---weird---", "weird"},
		{"", ""},
	}
	for _, tt := range tests {
		if got := slugify(tt.in); got != tt.want {
			t.Errorf("slugify(%q) = %q, want %q", tt.in, got, tt.want)
		}
	}
}

func TestRunRejectsUnknownFigure(t *testing.T) {
	if err := run("zzz", 1, false, 1, false, "", 1); err == nil {
		t.Fatal("unknown figure accepted")
	}
}

// TestTablesIdenticalAcrossJobs is the CLI-level determinism golden
// test: for the same seed, every CSV file capybench emits must be
// byte-identical between -jobs 1 and -jobs 8. Figure 8 exercises the
// run matrix (the expensive grid behind Figs. 8/9/11); 3 and 4 cover
// the design-space sweeps.
func TestTablesIdenticalAcrossJobs(t *testing.T) {
	figs := []string{"3", "4"}
	if !testing.Short() {
		figs = append(figs, "8")
	}
	// Silence the table prints; the CSVs in -out are what we compare.
	stdout := os.Stdout
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = devnull
	defer func() {
		os.Stdout = stdout
		devnull.Close()
	}()

	for _, fig := range figs {
		serialDir, parallelDir := t.TempDir(), t.TempDir()
		if err := run(fig, 42, false, 1, false, serialDir, 1); err != nil {
			t.Fatalf("run(%s, jobs=1): %v", fig, err)
		}
		if err := run(fig, 42, false, 1, false, parallelDir, 8); err != nil {
			t.Fatalf("run(%s, jobs=8): %v", fig, err)
		}
		files, err := filepath.Glob(filepath.Join(serialDir, "*.csv"))
		if err != nil || len(files) == 0 {
			t.Fatalf("fig %s: no CSVs emitted (%v)", fig, err)
		}
		for _, f := range files {
			want, err := os.ReadFile(f)
			if err != nil {
				t.Fatal(err)
			}
			got, err := os.ReadFile(filepath.Join(parallelDir, filepath.Base(f)))
			if err != nil {
				t.Fatalf("fig %s: jobs=8 did not emit %s: %v", fig, filepath.Base(f), err)
			}
			if string(got) != string(want) {
				t.Errorf("fig %s: %s differs between -jobs 1 and -jobs 8:\n--- jobs=1\n%s\n--- jobs=8\n%s",
					fig, filepath.Base(f), want, got)
			}
		}
	}
}

func TestRunFastFigures(t *testing.T) {
	// The cheap figures run end-to-end (stdout noise is fine in tests),
	// on both the serial and the parallel path.
	for _, jobs := range []int{1, 4} {
		for _, fig := range []string{"3", "4", "mech", "char"} {
			if err := run(fig, 1, true, 1, false, t.TempDir(), jobs); err != nil {
				t.Errorf("run(%s, jobs=%d): %v", fig, jobs, err)
			}
		}
	}
}
