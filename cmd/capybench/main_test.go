package main

import "testing"

func TestSlugify(t *testing.T) {
	tests := []struct{ in, want string }{
		{"Figure 8 — event detection accuracy", "figure-8-event-detection-accuracy"},
		{"§5.2 — reconfiguration mechanism comparison", "52-reconfiguration-mechanism-comparison"},
		{"---weird---", "weird"},
		{"", ""},
	}
	for _, tt := range tests {
		if got := slugify(tt.in); got != tt.want {
			t.Errorf("slugify(%q) = %q, want %q", tt.in, got, tt.want)
		}
	}
}

func TestRunRejectsUnknownFigure(t *testing.T) {
	if err := run("zzz", 1, false, 1, false, ""); err == nil {
		t.Fatal("unknown figure accepted")
	}
}

func TestRunFastFigures(t *testing.T) {
	// The cheap figures run end-to-end (stdout noise is fine in tests).
	for _, fig := range []string{"3", "4", "mech", "char"} {
		if err := run(fig, 1, true, 1, false, t.TempDir()); err != nil {
			t.Errorf("run(%s): %v", fig, err)
		}
	}
}
