// Capybench regenerates every figure and table of the Capybara paper's
// evaluation and prints them as aligned text tables (optionally CSV).
//
// Usage:
//
//	capybench [-fig all|2|3|4|8|9|10|11|mech|char|capysat|ablations] [-seed N] [-csv] [-jobs N]
//	capybench -chaos N [-seed S] [-jobs N]
//
// Figures 8, 9, and 11 share one run matrix (every application under
// every power system), so asking for any of them runs the full grid.
// Independent simulations fan out across -jobs workers (default: every
// CPU); the emitted tables are byte-identical at any worker count, so
// -jobs only changes wall time, never a number.
//
// -chaos N runs N seeded fault-injection trials instead of figures:
// randomized devices with harvester outages injected at adversarial
// instants, with a physics-invariant registry checked after every
// simulator event (see internal/chaos). The exit status is non-zero if
// any invariant is violated; every violation is replayable from its
// printed seed and trial index.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"

	"capybara/internal/chaos"
	"capybara/internal/core"
	"capybara/internal/experiments"
	"capybara/internal/prof"
	"capybara/internal/sim"
	"capybara/internal/viz"
)

func main() {
	fig := flag.String("fig", "all", "which figure/table to regenerate")
	seed := flag.Int64("seed", experiments.DefaultSeed, "experiment seed")
	asCSV := flag.Bool("csv", false, "emit CSV instead of aligned tables")
	orbits := flag.Int("orbits", 4, "orbits for the CapySat study")
	plot := flag.Bool("plot", false, "also render ASCII plots for figures 2, 3, 4, and 10")
	outDir := flag.String("out", "", "also write each table as a CSV file into this directory")
	jobs := flag.Int("jobs", runtime.GOMAXPROCS(0), "parallel simulation jobs (1 forces the serial path)")
	chaosTrials := flag.Int("chaos", 0, "run N fault-injection trials instead of figures (non-zero exit on any invariant violation)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write an allocation profile to this file on exit")
	flag.Parse()

	stop, err := prof.StartCPU(*cpuProfile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "capybench:", err)
		os.Exit(1)
	}
	if *chaosTrials > 0 {
		err = runChaos(*chaosTrials, *seed, *jobs)
	} else {
		err = run(*fig, *seed, *asCSV, *orbits, *plot, *outDir, *jobs)
	}
	stop()
	if err == nil {
		err = prof.WriteHeap(*memProfile)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "capybench:", err)
		os.Exit(1)
	}
}

func run(fig string, seed int64, asCSV bool, orbits int, plot bool, outDir string, jobs int) error {
	ctx := context.Background()
	if outDir != "" {
		if err := os.MkdirAll(outDir, 0o755); err != nil {
			return err
		}
	}
	emit := func(t *experiments.Table) error {
		if asCSV {
			if err := t.WriteCSV(os.Stdout); err != nil {
				return err
			}
		} else if err := t.Fprint(os.Stdout); err != nil {
			return err
		}
		fmt.Println()
		if outDir != "" {
			f, err := os.Create(filepath.Join(outDir, slugify(t.Title)+".csv"))
			if err != nil {
				return err
			}
			defer f.Close()
			if err := t.WriteCSV(f); err != nil {
				return err
			}
		}
		return nil
	}

	all := fig == "all"
	matrixNeeded := all || fig == "8" || fig == "9" || fig == "11"

	if all || fig == "2" {
		r, err := experiments.Figure2()
		if err != nil {
			return err
		}
		if err := emit(r.Table()); err != nil {
			return err
		}
		if plot {
			plotFigure2(r)
		}
	}
	if all || fig == "3" {
		points, err := experiments.Figure3Parallel(ctx, jobs)
		if err != nil {
			return err
		}
		if err := emit(experiments.Fig3Table(points)); err != nil {
			return err
		}
		if plot {
			plotFigure3(points)
		}
	}
	if all || fig == "4" {
		points, err := experiments.Figure4Parallel(ctx, jobs)
		if err != nil {
			return err
		}
		if err := emit(experiments.Fig4Table(points)); err != nil {
			return err
		}
		if plot {
			plotFigure4(points)
		}
	}
	if matrixNeeded {
		m, err := experiments.RunMatrixParallel(ctx, seed, 1.0, jobs)
		if err != nil {
			return err
		}
		if all || fig == "8" {
			if err := emit(m.AccuracyTable()); err != nil {
				return err
			}
		}
		if all || fig == "9" {
			if err := emit(m.LatencyTable()); err != nil {
				return err
			}
		}
		if all || fig == "11" {
			if err := emit(m.GapTable()); err != nil {
				return err
			}
			if !asCSV {
				printGapHistograms(m)
			}
		}
	}
	if all || fig == "10" {
		for _, cfg := range []experiments.Fig10Config{
			experiments.TASensitivity(), experiments.GRCSensitivity(),
		} {
			cfg.Seed = seed
			cfg.Jobs = jobs
			points, err := experiments.Figure10Ctx(ctx, cfg)
			if err != nil {
				return err
			}
			if err := emit(experiments.Fig10Table(cfg, points)); err != nil {
				return err
			}
			if plot {
				plotFigure10(cfg, points)
			}
		}
	}
	if all || fig == "mech" {
		if err := emit(experiments.MechanismTable(experiments.Mechanisms())); err != nil {
			return err
		}
	}
	if all || fig == "char" {
		if err := emit(experiments.Characterization()); err != nil {
			return err
		}
	}
	if all || fig == "capysat" {
		if err := emit(experiments.CapySat(orbits).Table()); err != nil {
			return err
		}
	}
	if all || fig == "ablations" {
		if err := emit(experiments.AblateBypass().Table()); err != nil {
			return err
		}
		if err := emit(experiments.SwitchDefaultTable(experiments.AblateSwitchDefault())); err != nil {
			return err
		}
		if err := emit(experiments.ESRTable(experiments.AblateESR())); err != nil {
			return err
		}
		if err := emit(experiments.DeficitTable(experiments.AblateDeficit())); err != nil {
			return err
		}
		if err := emit(experiments.SleepTable(experiments.AblateSleep())); err != nil {
			return err
		}
	}
	if all || fig == "seeds" {
		var rows []experiments.SeedStats
		for _, app := range []string{"TempAlarm", "GestureFast", "CorrSense"} {
			r, err := experiments.MultiSeedParallel(ctx, app,
				[]core.Variant{core.Fixed, core.CapyR, core.CapyP},
				experiments.DefaultSeeds(5), 1.0, jobs)
			if err != nil {
				return err
			}
			rows = append(rows, r...)
		}
		if err := emit(experiments.MultiSeedTable(rows)); err != nil {
			return err
		}
	}
	if all || fig == "related" {
		if err := emit(experiments.Federated().Table()); err != nil {
			return err
		}
		ckpt, err := experiments.Checkpointing()
		if err != nil {
			return err
		}
		if err := emit(ckpt.Table()); err != nil {
			return err
		}
	}
	if !all {
		switch fig {
		case "2", "3", "4", "8", "9", "10", "11", "mech", "char", "capysat", "ablations", "related", "seeds":
		default:
			return fmt.Errorf("unknown figure %q", fig)
		}
	}
	return nil
}

// runChaos executes the fault-injection harness and reports its
// invariant verdicts; any violation is a non-zero exit.
func runChaos(trials int, seed int64, jobs int) error {
	rep, err := chaos.Run(context.Background(), chaos.Config{
		Trials: trials,
		Seed:   seed,
		Jobs:   jobs,
	})
	if err != nil {
		return err
	}
	fmt.Print(rep.Summary())
	if n := len(rep.Violations); n > 0 {
		return fmt.Errorf("%d invariant violation(s)", n)
	}
	return nil
}

func printGapHistograms(m *experiments.Matrix) {
	fmt.Println("Figure 11 — inter-sample interval histograms (TempAlarm)")
	for _, v := range []core.Variant{core.Fixed, core.CapyR, core.CapyP} {
		h := m.GapHistogram(v)
		fmt.Printf("  %s:\n", v)
		for i, c := range h.Counts {
			if c == 0 {
				continue
			}
			fmt.Printf("    %-16s %d\n", h.BinLabel(i), c)
		}
	}
	fmt.Println()
}

func plotFigure2(r *experiments.Fig2Result) {
	for _, panel := range []struct {
		name  string
		trace *sim.Trace
	}{{"low capacity", r.LowTrace}, {"high capacity", r.HighTrace}} {
		p := viz.New("Figure 2 — buffer voltage, " + panel.name)
		p.XLabel, p.YLabel = "seconds", "volts"
		var xs, ys []float64
		for _, s := range panel.trace.Samples {
			xs = append(xs, float64(s.T))
			ys = append(ys, float64(s.V))
		}
		p.Add("V", '*', xs, ys)
		p.Render(os.Stdout)
		fmt.Println()
	}
}

func plotFigure3(points []experiments.Fig3Point) {
	p := viz.New("Figure 3 — atomicity vs capacitance")
	p.XLabel, p.YLabel = "capacitance (F, log)", "Mops"
	p.LogX = true
	var xs, ys []float64
	for _, pt := range points {
		xs = append(xs, float64(pt.C))
		ys = append(ys, pt.Mops)
	}
	p.Add("atomicity", '*', xs, ys)
	p.Render(os.Stdout)
	fmt.Println()
}

func plotFigure4(points []experiments.Fig4Point) {
	p := viz.New("Figure 4 — atomicity vs volume by technology")
	p.XLabel, p.YLabel = "volume (mm³)", "Mops (log)"
	p.LogY = true
	byTech := map[string][][2]float64{}
	for _, pt := range points {
		byTech[pt.Tech] = append(byTech[pt.Tech], [2]float64{float64(pt.Volume), pt.Mops})
	}
	markers := map[string]byte{"ceramic-X5R": 'c', "supercap-CPH3225A": 's'}
	for tech, pts := range byTech {
		var xs, ys []float64
		for _, q := range pts {
			xs = append(xs, q[0])
			ys = append(ys, q[1])
		}
		m := markers[tech]
		if m == 0 {
			m = '?'
		}
		p.Add(tech, m, xs, ys)
	}
	p.Render(os.Stdout)
	fmt.Println()
}

func plotFigure10(cfg experiments.Fig10Config, points []experiments.Fig10Point) {
	p := viz.New("Figure 10 — reported fraction vs mean inter-arrival (" + cfg.App + ")")
	p.XLabel, p.YLabel = "mean inter-arrival (s)", "fraction reported"
	markers := map[core.Variant]byte{
		core.Continuous: 'c', core.Fixed: 'f', core.CapyR: 'r', core.CapyP: 'p',
	}
	for _, v := range cfg.Variants {
		var xs, ys []float64
		for _, pt := range points {
			if pt.Variant == v {
				xs = append(xs, float64(pt.Mean))
				ys = append(ys, pt.Reported)
			}
		}
		p.Add(v.String(), markers[v], xs, ys)
	}
	p.Render(os.Stdout)
	fmt.Println()
}

// slugify turns a table title into a file name.
func slugify(title string) string {
	var b strings.Builder
	for _, r := range strings.ToLower(title) {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9':
			b.WriteRune(r)
		case r == ' ', r == '-', r == '_':
			b.WriteByte('-')
		}
	}
	s := b.String()
	for strings.Contains(s, "--") {
		s = strings.ReplaceAll(s, "--", "-")
	}
	return strings.Trim(s, "-")
}
