// Package capybara is a simulation-backed reimplementation of
// Capybara, the reconfigurable energy storage architecture for
// battery-free energy-harvesting devices (Colin, Ruppel, Lucia —
// ASPLOS 2018).
//
// The package is a facade over the implementation packages under
// internal/: it exposes the task-based programming interface with
// energy-mode annotations (config / burst / preburst), the runtime
// variants the paper evaluates (continuous power, fixed capacity,
// Capy-R, Capy-P), the capacitor/bank/harvester models needed to
// provision a platform, and the simulator that executes applications
// on harvested energy.
//
// A minimal application:
//
//	prog := capybara.MustProgram("sense",
//	    &capybara.Task{Name: "sense", Config: "small", Run: sense},
//	    &capybara.Task{Name: "alert", Burst: "big", Run: alert},
//	)
//	inst, err := capybara.New(capybara.Config{
//	    Variant:    capybara.CapyP,
//	    Source:     capybara.RegulatedSupply{Max: 2 * capybara.MilliWatt, V: 3},
//	    MCU:        capybara.MSP430FR5969(),
//	    Base:       smallBank,
//	    Switched:   []*capybara.Bank{bigBank},
//	    SwitchKind: capybara.NormallyOpen,
//	    Modes: []capybara.Mode{
//	        {Name: "small", Mask: 0b001},
//	        {Name: "big", Mask: 0b010},
//	    },
//	}, prog)
//
// See examples/ for complete programs and DESIGN.md for the system
// inventory.
package capybara

import (
	"capybara/internal/core"
	"capybara/internal/device"
	"capybara/internal/env"
	"capybara/internal/harvest"
	"capybara/internal/power"
	"capybara/internal/reservoir"
	"capybara/internal/sim"
	"capybara/internal/storage"
	"capybara/internal/task"
	"capybara/internal/units"
)

// Physical quantities (SI units; see internal/units).
type (
	Voltage     = units.Voltage
	Current     = units.Current
	Capacitance = units.Capacitance
	Energy      = units.Energy
	Power       = units.Power
	Resistance  = units.Resistance
	Volume      = units.Volume
	Seconds     = units.Seconds
)

// Common magnitudes.
const (
	MicroFarad  = units.MicroFarad
	MilliFarad  = units.MilliFarad
	MicroWatt   = units.MicroWatt
	MilliWatt   = units.MilliWatt
	MilliJoule  = units.MilliJoule
	Millisecond = units.Millisecond
	Minute      = units.Minute
)

// Energy storage: capacitor technologies and banks.
type (
	Technology = storage.Technology
	Group      = storage.Group
	Bank       = storage.Bank
)

// The built-in capacitor technology catalog.
var (
	CeramicX5R       = storage.CeramicX5R
	Tantalum         = storage.Tantalum
	SupercapCPH3225A = storage.SupercapCPH3225A
	EDLC             = storage.EDLC
)

// NewBank builds a named bank from parallel groups of capacitors.
func NewBank(name string, groups ...Group) (*Bank, error) {
	return storage.NewBank(name, groups...)
}

// MustBank is NewBank for static configurations.
func MustBank(name string, groups ...Group) *Bank {
	return storage.MustBank(name, groups...)
}

// GroupOf builds a parallel group of n units of tech.
func GroupOf(tech Technology, n int) Group { return storage.GroupOf(tech, n) }

// GroupFor builds the smallest group of tech units totalling at least c.
func GroupFor(tech Technology, c Capacitance) Group { return storage.GroupFor(tech, c) }

// Harvesters.
type (
	Source          = harvest.Source
	RegulatedSupply = harvest.RegulatedSupply
	SolarPanel      = harvest.SolarPanel
	PVPanel         = harvest.PVPanel
	RFHarvester     = harvest.RFHarvester
	Limiter         = harvest.Limiter
	LightTrace      = harvest.Trace
)

// Trace constructors.
var (
	ConstantTrace = harvest.ConstantTrace
	PWMTrace      = harvest.PWMTrace
	DiurnalTrace  = harvest.DiurnalTrace
	BlackoutTrace = harvest.BlackoutTrace
)

// Loads: MCU, peripherals, radio.
type (
	MCU        = device.MCU
	Peripheral = device.Peripheral
	Radio      = device.Radio
)

// The built-in load catalog.
var (
	MSP430FR5969    = device.MSP430FR5969
	Phototransistor = device.Phototransistor
	APDS9960        = device.APDS9960
	TMP36           = device.TMP36
	Magnetometer    = device.Magnetometer
	ProximitySensor = device.ProximitySensor
	LED             = device.LED
	CC2650          = device.CC2650
)

// Reconfigurable reservoir.
type SwitchKind = reservoir.SwitchKind

// Switch defaults.
const (
	NormallyOpen   = reservoir.NormallyOpen
	NormallyClosed = reservoir.NormallyClosed
)

// PrechargeDeficit is how far below a direct charge the switch circuit
// can pre-charge a bank (paper §6.4).
const PrechargeDeficit = reservoir.PrechargeDeficit

// Programming interface: tasks, programs, execution context.
type (
	Task       = task.Task
	Program    = task.Program
	Ctx        = task.Ctx
	Next       = task.Next
	EnergyMode = task.EnergyMode
)

// Halt ends a program.
const Halt = task.Halt

// NewProgram validates and assembles a task program.
func NewProgram(entry string, tasks ...*Task) (*Program, error) {
	return task.NewProgram(entry, tasks...)
}

// MustProgram is NewProgram for statically-known programs.
func MustProgram(entry string, tasks ...*Task) *Program {
	return task.MustProgram(entry, tasks...)
}

// Runtime: modes, variants, platform configuration.
type (
	Mode     = core.Mode
	Config   = core.Config
	Instance = core.Instance
	Variant  = core.Variant
	Runtime  = core.Runtime
)

// The paper's four evaluation systems.
const (
	Continuous = core.Continuous
	Fixed      = core.Fixed
	CapyR      = core.CapyR
	CapyP      = core.CapyP
)

// DefaultVTop is the default charge-complete voltage of a mode.
const DefaultVTop = core.DefaultVTop

// New builds a runnable platform instance executing prog.
func New(cfg Config, prog *Program) (*Instance, error) {
	return core.New(cfg, prog)
}

// Provision finds the smallest bank of tech units that sustains a load
// for a duration — the paper's §3 grow-until-it-completes methodology.
var Provision = core.Provision

// Derate over-provisions a group by a margin for capacitor aging.
var Derate = core.Derate

// Planning and measurement: the paper's §8 future work (automatic
// capacity estimation and bank allocation) and the §3 measurement
// harness that feeds it.
type (
	TaskDemand  = core.TaskDemand
	Plan        = core.Plan
	Measurement = core.Measurement
)

// PlanModes derives a bank array and mode table from task demands.
var PlanModes = core.PlanModes

// MeasureProgram profiles a program's tasks on continuous power.
var MeasureProgram = core.MeasureProgram

// PlanFromProfiles turns measurements into a plan.
var PlanFromProfiles = core.PlanFromProfiles

// PowerSystem is the power distribution circuit: the input booster
// with its cold-start and bypass paths plus the regulated output
// booster (paper §5.1).
type PowerSystem = power.System

// NewPowerSystem wires a harvester to the default boosters.
func NewPowerSystem(src Source) *PowerSystem { return power.NewSystem(src) }

// Simulation and environment helpers for building experiments.
type (
	Trace    = sim.Trace
	Device   = sim.Device
	EventLog = sim.EventLog
	Schedule = env.Schedule
	Event    = env.Event
)

// Poisson draws a deterministic event schedule.
var Poisson = env.Poisson
