package capybara

import (
	mrand "math/rand"
	"testing"
)

// TestFacadeEndToEnd exercises the public API exactly as the README's
// quickstart does: provision banks, declare modes, write a two-task
// program with a preburst/burst pair, and run it on harvested energy.
func TestFacadeEndToEnd(t *testing.T) {
	small := MustBank("small",
		GroupFor(CeramicX5R, 400*MicroFarad),
		GroupFor(Tantalum, 330*MicroFarad))
	big := MustBank("big", GroupOf(EDLC, 6))

	radio := CC2650()
	alerts := 0
	prog := MustProgram("sense",
		&Task{
			Name:          "sense",
			PreburstBurst: "big",
			PreburstExec:  "small",
			Run: func(c *Ctx) Next {
				c.Compute(10_000)
				if c.WordOr("rounds", 0) >= 3 {
					return "alert"
				}
				c.SetWord("rounds", c.WordOr("rounds", 0)+1)
				return "sense"
			},
		},
		&Task{
			Name:  "alert",
			Burst: "big",
			Run: func(c *Ctx) Next {
				c.Transmit(radio, 25)
				alerts++
				return Halt
			},
		},
	)

	inst, err := New(Config{
		Variant:    CapyP,
		Source:     RegulatedSupply{Max: 2 * MilliWatt, V: 3.0},
		MCU:        MSP430FR5969(),
		Base:       small,
		Switched:   []*Bank{big},
		SwitchKind: NormallyOpen,
		Modes: []Mode{
			{Name: "small", Mask: 0b001},
			{Name: "big", Mask: 0b010},
		},
	}, prog)
	if err != nil {
		t.Fatal(err)
	}
	if err := inst.Run(10 * Minute); err != nil {
		t.Fatal(err)
	}
	if alerts != 1 {
		t.Fatalf("alerts = %d, want 1", alerts)
	}
	if inst.Runtime.Precharges == 0 {
		t.Fatal("preburst never pre-charged")
	}
	if inst.Dev.Stats.Boots == 0 {
		t.Fatal("device never booted")
	}
}

// TestFacadeProvision exercises the provisioning helpers through the
// facade.
func TestFacadeProvision(t *testing.T) {
	// Provision is re-exported; a trivial compute task needs at least
	// one unit.
	g := GroupFor(Tantalum, 500*MicroFarad)
	if g.Count != 2 {
		t.Fatalf("GroupFor(500µF tantalum) = %d units, want 2", g.Count)
	}
	d := Derate(g, 0.2)
	if d.Count <= g.Count {
		t.Fatal("Derate did not grow the group")
	}
}

// TestFacadeCatalog spot-checks the re-exported catalogs.
func TestFacadeCatalog(t *testing.T) {
	if CeramicX5R.Name == "" || EDLC.Name == "" {
		t.Fatal("technology catalog broken")
	}
	if MSP430FR5969().Name != "MSP430FR5969" {
		t.Fatal("MCU catalog broken")
	}
	if CC2650().Name != "CC2650" {
		t.Fatal("radio catalog broken")
	}
	if PrechargeDeficit != 0.3 {
		t.Fatalf("PrechargeDeficit = %v", PrechargeDeficit)
	}
	for _, v := range []Variant{Continuous, Fixed, CapyR, CapyP} {
		if v.String() == "" {
			t.Fatal("variant stringer broken")
		}
	}
}

// TestFacadeHarvestAndSchedule exercises the harvester and schedule
// exports.
func TestFacadeHarvestAndSchedule(t *testing.T) {
	panel := SolarPanel{
		PeakPower:          5 * MilliWatt,
		OpenCircuitVoltage: 2.0,
		Series:             2,
		Light:              PWMTrace(0.5, 1),
	}
	if panel.PowerAt(0.25) != 10*MilliWatt {
		t.Fatalf("panel power = %v", panel.PowerAt(0.25))
	}
	lim := Limiter{Source: panel, Max: 3.5}
	if lim.VoltageAt(0.25) > 3.5 {
		t.Fatal("limiter did not clamp")
	}
	blk := BlackoutTrace(ConstantTrace(1), [2]Seconds{5, 10})
	if blk.Level(7) != 0 || blk.Level(20) != 1 {
		t.Fatal("blackout trace wrong")
	}
	if DiurnalTrace(Minute).Level(Minute/4) < 0.99 {
		t.Fatal("diurnal trace wrong")
	}

	sched := Poisson(newRand(3), 10, 30, 1)
	if len(sched.Events) != 10 {
		t.Fatalf("schedule events = %d", len(sched.Events))
	}
	if _, ok := sched.ActiveAt(sched.Events[0].At); !ok {
		t.Fatal("ActiveAt broken through facade")
	}
}

// TestFacadeBankPhysics spot-checks storage exports.
func TestFacadeBankPhysics(t *testing.T) {
	b := MustBank("b", GroupOf(SupercapCPH3225A, 2))
	if b.Capacitance() != 22*MilliFarad {
		t.Fatalf("capacitance = %v", b.Capacitance())
	}
	if b.ESR() != 80 {
		t.Fatalf("ESR = %v", b.ESR())
	}
	if _, err := NewBank("empty"); err == nil {
		t.Fatal("empty bank accepted")
	}
	if RFHarvester(RFHarvester{TransmitPower: 3, Distance: 1, Efficiency: 0.5}).PowerAt(0) <= 0 {
		t.Fatal("RF harvester broken")
	}
}

func newRand(seed int64) *mrand.Rand { return mrand.New(mrand.NewSource(seed)) }
