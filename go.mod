module capybara

go 1.22
